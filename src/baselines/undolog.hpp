// UndoLogPTM: a PMDK-libpmemobj-style undo-log persistent transactional
// memory, used as the paper's "PMDK" comparison point (DESIGN.md §1).
//
// Write-ahead undo logging (§2): before each in-place store, the previous
// content of the destination words is appended to a log in persistent
// memory and persisted — one persistence fence per store — after which the
// in-place modification may proceed.  Commit truncates the log (one more
// fence + sync); recovery of an interrupted transaction replays the log
// backwards.  This is the cost structure Table 1 attributes to undo-log
// PTMs: fences proportional to the number of stores and ≥2x write
// amplification (every user word is also written to the log with its
// address).
//
// Concurrency matches the paper's PMDK setup exactly (§6.1): a
// std::shared_timed_mutex with the platform's default reader preference
// wraps every transaction.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <shared_mutex>
#include <stdexcept>
#include <string>

#include "alloc/pallocator.hpp"
#include "analysis/race_hooks.hpp"
#include "core/engine_globals.hpp"
#include "core/persist.hpp"
#include "pmem/flush.hpp"
#include "pmem/region.hpp"
#include "sync/seqlock.hpp"
#include "sync/spinlock.hpp"

namespace romulus::baselines {

class UndoLogPTM {
  public:
    template <typename T>
    using p = persist<T, UndoLogPTM>;
    using Alloc = PAllocator<UndoLogPTM>;

    static constexpr const char* name() { return "UndoLog(PMDK-like)"; }

    // ---------------------------------------------------------------- setup

    static void init(size_t heap_bytes = 0, const std::string& file = {}) {
        if (s.initialized) throw std::runtime_error("UndoLogPTM: double init");
        size_t size = heap_bytes ? heap_bytes : default_heap_bytes();
        size = (size + 4095) & ~size_t{4095};
        std::string path =
            file.empty() ? pmem::default_pmem_dir() + "/undolog.heap" : file;
        bool created = s.region.map(path, size, kBaseAddr);

        // The log area scales with the region (1/8th, >= 1 MiB) so small
        // test heaps work and huge transactions (Fig. 6 resizes) still fit.
        size_t log_bytes = size / 8 < (1u << 20) ? (1u << 20) : size / 8;
        s.log_capacity = log_bytes / sizeof(LogEntry);
        s.header = reinterpret_cast<UHeader*>(s.region.base());
        s.log = reinterpret_cast<LogEntry*>(s.region.base() + kHeaderReserved);
        s.heap = s.region.base() + kHeaderReserved + log_bytes;
        s.heap_size = size - kHeaderReserved - log_bytes;
        if (size < kHeaderReserved + log_bytes + (1u << 20))
            throw std::runtime_error("UndoLogPTM: heap too small");
        s.meta = reinterpret_cast<HeapMeta*>(s.heap);

        if (!created && s.header->magic.load() == kMagic &&
            s.header->heap_size == s.heap_size) {
            recover();
        } else {
            format();
        }
        s.alloc.attach(&s.meta->alloc_meta, pool_base(), pool_size());
        ROMULUS_RACE_REGISTER_REGION(s.heap, s.heap_size, "UndoLog", "heap",
                                     nullptr);
        s.initialized = true;
    }

    static void close() {
        ROMULUS_RACE_UNREGISTER_REGION(s.heap);
        s.region.unmap();
        s.initialized = false;
    }
    static void destroy() {
        ROMULUS_RACE_UNREGISTER_REGION(s.heap);
        s.region.destroy();
        s.initialized = false;
    }
    static bool initialized() { return s.initialized; }

    // -------------------------------------------------------- interposition

    template <typename T>
    static void pstore(T* addr, const T& val) {
        if (in_heap(addr) && tl.tx_depth > 0) {
            log_range(addr, sizeof(T));  // entry persisted + fence
            *addr = val;
            ROMULUS_RACE_WRITE(addr, sizeof(T));
            pmem::on_store(addr, sizeof(T));
            pmem::pwb_range(addr, sizeof(T));
            return;
        }
        *addr = val;
        ROMULUS_RACE_WRITE(addr, sizeof(T));
        if (s.initialized && s.region.contains(addr)) {
            pmem::on_store(addr, sizeof(T));
            pmem::pwb_range(addr, sizeof(T));
        }
    }

    template <typename T>
    static T pload(const T* addr) {
        T v = *addr;  // undo log mutates in place: no load redirection
        if (tl.opt_active) {
            // Seqlock fast path: per-load validation, exactly as in the
            // Romulus engines (DESIGN.md §4.9) — a torn value is rejected
            // before the closure can use it.
            if (!s.seq.validate(tl.opt_seq)) throw sync::OptimisticAbort{};
            if (!ROMULUS_RACE_OPTIMISTIC_READ(&s.seq, addr, sizeof(T),
                                              tl.opt_seq, s.seq.word(),
                                              "seqlock.validate"))
                throw sync::OptimisticAbort{};
            return v;
        }
        ROMULUS_RACE_READ(addr, sizeof(T));
        return v;
    }

    static void store_range(void* dst, const void* src, size_t n) {
        if (in_heap(dst) && tl.tx_depth > 0) log_range(dst, n);
        std::memcpy(dst, src, n);
        ROMULUS_RACE_WRITE(dst, n);
        if (s.initialized && s.region.contains(dst)) {
            pmem::on_store(dst, n);
            pmem::pwb_range(dst, n);
        }
    }

    static void zero_range(void* dst, size_t n) {
        if (in_heap(dst) && tl.tx_depth > 0) log_range(dst, n);
        std::memset(dst, 0, n);
        ROMULUS_RACE_WRITE(dst, n);
        if (s.initialized && s.region.contains(dst)) {
            pmem::on_store(dst, n);
            pmem::pwb_range(dst, n);
        }
    }

    static void note_used(const void* end) {
        uint64_t off = static_cast<const uint8_t*>(end) - s.heap;
        if (off > s.header->used_size.load(std::memory_order_relaxed)) {
            s.header->used_size.store(off, std::memory_order_relaxed);
            pmem::on_store(&s.header->used_size, 8);
            pmem::pwb(&s.header->used_size);
        }
    }

    // --------------------------------------------------------- transactions

    template <typename F>
    static void updateTx(F&& f) {
        if (tl.tx_depth > 0) {
            f();
            return;
        }
        std::unique_lock lk(s.mutex);
        ROMULUS_RACE_ACQUIRE(&s.mutex, "undo.write_lock");
        ROMULUS_RACE_SCOPED_RELEASE(&s.mutex, "undo.write_unlock");
        begin_tx();
        try {
            f();
        } catch (...) {
            // Failure atomicity also covers user exceptions: the undo log
            // restores the pre-transaction state, exactly as crash recovery
            // would.
            rollback();
            tl.tx_depth = 0;
            throw;
        }
        commit_tx();
    }

    template <typename F>
    static void readTx(F&& f) {
        if (tl.tx_depth > 0 || tl.opt_active) {  // flat nesting
            f();
            return;
        }
        // Seqlock fast path (DESIGN.md §4.9): the writer bumps s.seq around
        // its logging window, so a validated speculative reader never takes
        // the shared mutex at all.
        if (read_config().optimistic && try_optimistic_read(f)) return;
        std::shared_lock lk(s.mutex);
        ROMULUS_RACE_ACQUIRE(&s.mutex, "undo.read_lock");
        ROMULUS_RACE_SCOPED_RELEASE(&s.mutex, "undo.read_unlock");
        ROMULUS_RACE_SCOPED_TX("read-tx");
        f();
    }

    /// Single-threaded API parity with the Romulus engines.
    static void begin_transaction() {
        if (tl.tx_depth++ > 0) return;
        begin_tx_body();
    }
    static void end_transaction() {
        assert(tl.tx_depth > 0);
        if (tl.tx_depth > 1) {
            --tl.tx_depth;
            return;
        }
        commit_body();
        tl.tx_depth = 0;
    }
    /// Roll back using the undo log (what recovery would do).
    static void abort_transaction() {
        assert(tl.tx_depth > 0);
        rollback();
        tl.tx_depth = 0;
    }
    static bool in_transaction() { return tl.tx_depth > 0; }

    // ----------------------------------------------------------- allocation

    template <typename T, typename... Args>
    static T* tmNew(Args&&... args) {
        void* ptr = alloc_bytes(sizeof(T));
        if constexpr (sizeof...(Args) == 0) {
            // Value-initializing placement-new would zero the object with
            // raw stores that bypass pstore — and thus the undo log, making
            // the chunk's previous content unrestorable after a crash mid-tx
            // (found by romfuzz: a rolled-back allocation left zeroes inside
            // a freed-and-reused value buffer).  Zero through zero_range
            // (logged) and default-initialize instead.
            zero_range(ptr, sizeof(T));
            return new (ptr) T;
        } else {
            return new (ptr) T(std::forward<Args>(args)...);
        }
    }
    template <typename T>
    static void tmDelete(T* obj) {
        if (obj == nullptr) return;
        obj->~T();
        free_bytes(obj);
    }
    static void* alloc_bytes(size_t n) {
        assert(tl.tx_depth > 0);
        void* ptr = s.alloc.alloc(n);
        if (ptr == nullptr) throw std::bad_alloc();
        return ptr;
    }
    static void free_bytes(void* ptr) {
        assert(tl.tx_depth > 0);
        if (ptr != nullptr) s.alloc.free(ptr);
    }

    // ---------------------------------------------------------------- roots

    template <typename T>
    static T* get_object(int idx) {
        return static_cast<T*>(s.meta->roots[idx].pload());
    }
    static void put_object(int idx, void* ptr) {
        assert(tl.tx_depth > 0);
        s.meta->roots[idx] = ptr;
    }

    // -------------------------------------------------------- introspection

    static uint64_t used_bytes() { return s.header->used_size.load(); }
    static Alloc& allocator() { return s.alloc; }
    static pmem::PmemRegion& region() { return s.region; }
    static uint64_t log_entries_in_tx() { return tl.entries_this_tx; }

    // Layout introspection, parallel to the Romulus engines (the persistency
    // checker builds its Layout from these): the undo log mutates one heap in
    // place, so "main" is the heap area and there is no twin copy.
    static uint8_t* main_base() { return s.heap; }
    static size_t main_size() { return s.heap_size; }
    static uint8_t* back_base() { return nullptr; }
    // Persistent undo-log area (romver attributes persist events to
    // header/log/heap areas through these).
    static uint8_t* log_base() { return reinterpret_cast<uint8_t*>(s.log); }
    static size_t log_size() { return s.log_capacity * sizeof(LogEntry); }

    /// Test hook: the optimistic-read sequence word (DESIGN.md §4.9),
    /// exposed so fixtures can simulate a writer window without a thread.
    static sync::SeqLock& seq_for_tests() { return s.seq; }

    /// Test hook: clear transaction thread-locals after a simulated crash.
    static void crash_reset_for_tests() {
        tl = TlState{};
        s.seq.set_for_tests(0);  // a crash mid-tx left the window odd
    }

    /// Crash recovery: an interrupted transaction left entries in the log;
    /// apply them in reverse to restore the pre-transaction state.
    static void recover() {
        uint64_t n = s.header->log_count.load();
        if (n == 0) return;
        if (n > s.log_capacity) throw std::runtime_error("UndoLogPTM: bad log");
        for (uint64_t i = n; i-- > 0;) {
            const LogEntry& e = s.log[i];
            auto* dst = reinterpret_cast<uint64_t*>(s.heap + e.heap_off);
            *dst = e.old_val;
            pmem::on_store(dst, 8);
            pmem::pwb(dst);
        }
        pmem::pfence();
        truncate_log();
        pmem::psync();
    }

  private:
    static constexpr uintptr_t kBaseAddr = 0x540000000000ull;
    static constexpr size_t kHeaderReserved = 4096;
    static constexpr uint64_t kMagic = 0x554E444F4C4F4731ull;  // "UNDOLOG1"

    struct LogEntry {
        uint64_t heap_off;  ///< 8-byte-aligned offset of the word in the heap
        uint64_t old_val;   ///< previous content
    };

    struct alignas(64) UHeader {
        std::atomic<uint64_t> magic;
        std::atomic<uint64_t> log_count;
        std::atomic<uint64_t> used_size;
        uint64_t heap_size;
    };

    struct HeapMeta {
        p<void*> roots[kMaxRootObjects];
        typename Alloc::Meta alloc_meta;
    };

    struct State {
        pmem::PmemRegion region;
        UHeader* header = nullptr;
        LogEntry* log = nullptr;
        uint64_t log_capacity = 0;
        uint8_t* heap = nullptr;
        size_t heap_size = 0;
        HeapMeta* meta = nullptr;
        Alloc alloc;
        std::shared_timed_mutex mutex;
        sync::SeqLock seq;  // optimistic-read window (DESIGN.md §4.9)
        bool initialized = false;
    };
    static State s;

    struct TlState {
        int tx_depth = 0;
        uint64_t entries_this_tx = 0;
        bool opt_active = false;  ///< inside a seqlock-validated read attempt
        uint64_t opt_seq = 0;     ///< the attempt's sequence snapshot
    };
    static thread_local TlState tl;

    /// Mirror of RomulusEngine::try_optimistic_read over the single global
    /// heap: bounded validated attempts at running `f` with no lock traffic
    /// and no fences; false sends the caller to the shared mutex.
    template <typename F>
    static bool try_optimistic_read(F& f) {
        ReadStats& rs = tl_read_stats();
        unsigned spins = 0;
        for (unsigned left = read_config().max_attempts; left > 0; --left) {
            const uint64_t sq = s.seq.read_begin();
            if (sq & 1) {  // a writer is inside its window right now
                rs.opt_aborts++;
                sync::spin_wait(spins);
                continue;
            }
            tl.opt_active = true;
            tl.opt_seq = sq;
            ROMULUS_RACE_TX_BEGIN("read-tx(opt)");
            bool valid;
            try {
                f();
                valid = s.seq.validate(sq);  // covers raw byte reads in f
            } catch (const sync::OptimisticAbort&) {
                valid = false;
            } catch (...) {
                tl.opt_active = false;
                ROMULUS_RACE_TX_END();
                if (s.seq.validate(sq)) {
                    rs.opt_exception_exits++;
                    throw;  // genuine user exception off a valid snapshot
                }
                rs.opt_aborts++;
                sync::spin_wait(spins);
                continue;
            }
            tl.opt_active = false;
            ROMULUS_RACE_TX_END();
            if (valid) {
                rs.opt_commits++;
                return true;
            }
            rs.opt_aborts++;
            sync::spin_wait(spins);
        }
        rs.fallbacks++;
        return false;
    }

    static bool in_heap(const void* ptr) {
        auto u = reinterpret_cast<uintptr_t>(ptr);
        auto b = reinterpret_cast<uintptr_t>(s.heap);
        return u >= b && u < b + s.heap_size;
    }

    static uint8_t* pool_base() {
        size_t meta_end = (sizeof(HeapMeta) + 63) & ~size_t{63};
        return s.heap + meta_end;
    }
    static size_t pool_size() { return s.heap_size - (pool_base() - s.heap); }

    /// Append undo entries for the 8-byte words covering [addr, addr+len),
    /// persist them, fence, and only then may the caller store in place.
    /// This is the per-store fence that dominates undo-log cost (Table 1).
    static void log_range(void* addr, size_t len) {
        auto a = reinterpret_cast<uintptr_t>(addr) & ~uintptr_t{7};
        auto end = reinterpret_cast<uintptr_t>(addr) + len;
        uint64_t c = s.header->log_count.load(std::memory_order_relaxed);
        const uint64_t first = c;
        for (; a < end; a += 8) {
            if (c >= s.log_capacity)
                throw std::runtime_error("UndoLogPTM: log overflow");
            LogEntry& e = s.log[c];
            e.heap_off = a - reinterpret_cast<uintptr_t>(s.heap);
            e.old_val = *reinterpret_cast<const uint64_t*>(a);
            pmem::on_store(&e, sizeof(LogEntry));
            ++c;
        }
        pmem::pwb_range(&s.log[first], (c - first) * sizeof(LogEntry));
        pmem::pfence();  // entries durable before the count covers them —
                         // otherwise a crash could replay torn entries
        s.header->log_count.store(c, std::memory_order_relaxed);
        pmem::on_store(&s.header->log_count, 8);
        pmem::pwb(&s.header->log_count);
        pmem::pfence();  // entry + count durable before the in-place store
        tl.entries_this_tx += c - first;
        pmem::notify_range_logged(addr, len);
    }

    static void truncate_log() {
        s.header->log_count.store(0, std::memory_order_relaxed);
        pmem::on_store(&s.header->log_count, 8);
        pmem::pwb(&s.header->log_count);
    }

    static void begin_tx() {
        tl.tx_depth = 1;
        begin_tx_body();
    }
    static void begin_tx_body() {
        tl.entries_this_tx = 0;
        tx_begin_hook();
        // Open the optimistic-read window before the first in-place store
        // can become visible (the undo log mutates the live heap mid-tx, so
        // the whole transaction body is the readers' exclusion window).
        s.seq.write_enter();
        ROMULUS_RACE_ACQUIRE(&s.seq, "seqlock.write_enter");
        ROMULUS_RACE_TX_BEGIN("update-tx");
    }

    static void commit_tx() {
        commit_body();
        tl.tx_depth = 0;
    }
    static void commit_body() {
        pmem::pfence();  // all in-place pwbs complete before truncation
        truncate_log();
        pmem::psync();
        // Close the window only after the commit psync: a validated
        // speculative reader has read durable, committed state.
        ROMULUS_RACE_RELEASE(&s.seq, "seqlock.write_exit");
        s.seq.write_exit();
        tx_commit_hook();
        ROMULUS_RACE_TX_END();
    }

    static void rollback() {
        uint64_t n = s.header->log_count.load();
        for (uint64_t i = n; i-- > 0;) {
            const LogEntry& e = s.log[i];
            auto* dst = reinterpret_cast<uint64_t*>(s.heap + e.heap_off);
            *dst = e.old_val;
            pmem::on_store(dst, 8);
            pmem::pwb(dst);
        }
        pmem::pfence();
        truncate_log();
        pmem::psync();
        // The rollback stores above mutate the heap: the window stays odd
        // until the pre-transaction state is fully restored.
        ROMULUS_RACE_RELEASE(&s.seq, "seqlock.write_exit");
        s.seq.write_exit();
        tx_abort_hook();
        ROMULUS_RACE_TX_END();
    }

    static void format() {
        s.header->magic.store(0);
        pmem::pwb(&s.header->magic);
        pmem::pfence();

        s.header->log_count.store(0);
        s.header->heap_size = s.heap_size;
        size_t meta_end = (sizeof(HeapMeta) + 63) & ~size_t{63};
        s.header->used_size.store(meta_end);
        pmem::on_store(s.header, sizeof(UHeader));
        pmem::pwb_range(s.header, sizeof(UHeader));

        tl.tx_depth = 0;  // format stores go through the non-logged path
        new (s.meta) HeapMeta;
        for (int i = 0; i < kMaxRootObjects; ++i) s.meta->roots[i] = nullptr;
        s.alloc.format(&s.meta->alloc_meta, pool_base(), pool_size());
        pmem::pwb_range(s.heap, meta_end);
        pmem::pfence();

        s.header->magic.store(kMagic);
        pmem::on_store(&s.header->magic, 8);
        pmem::pwb(&s.header->magic);
        pmem::psync();
    }
};

}  // namespace romulus::baselines
