// UndoLogPTM: a PMDK-libpmemobj-style undo-log persistent transactional
// memory, used as the paper's "PMDK" comparison point (DESIGN.md §1).
//
// Write-ahead undo logging (§2): before each in-place store, the previous
// content of the destination words is appended to a log in persistent
// memory and persisted — one persistence fence per store — after which the
// in-place modification may proceed.  Commit truncates the log (one more
// fence + sync); recovery of an interrupted transaction replays the log
// backwards.  This is the cost structure Table 1 attributes to undo-log
// PTMs: fences proportional to the number of stores and ≥2x write
// amplification (every user word is also written to the log with its
// address).
//
// Concurrency matches the paper's PMDK setup exactly (§6.1): a
// std::shared_timed_mutex with the platform's default reader preference
// wraps every transaction.  On top of that, small disjoint update
// transactions may take the stripe-locked speculative fast path (DESIGN.md
// §4.11): the speculation holds the mutex *shared* (excluding slow-path
// writers without serializing against other speculations), buffers its
// write set, and commits durably with per-run undo logging under per-line
// stripe try-locks — so recovery is the unchanged backward log replay.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <new>
#include <shared_mutex>
#include <stdexcept>
#include <string>

#include "alloc/pallocator.hpp"
#include "analysis/race_hooks.hpp"
#include "core/engine_globals.hpp"
#include "core/persist.hpp"
#include "pmem/flush.hpp"
#include "pmem/region.hpp"
#include "sync/crwwp.hpp"
#include "sync/seqlock.hpp"
#include "sync/spinlock.hpp"
#include "sync/stripe_lock.hpp"
#include "sync/thread_registry.hpp"

namespace romulus::baselines {

class UndoLogPTM {
  public:
    template <typename T>
    using p = persist<T, UndoLogPTM>;
    using Alloc = PAllocator<UndoLogPTM>;

    static constexpr const char* name() { return "UndoLog(PMDK-like)"; }

    // ---------------------------------------------------------------- setup

    static void init(size_t heap_bytes = 0, const std::string& file = {}) {
        if (s.initialized) throw std::runtime_error("UndoLogPTM: double init");
        size_t size = heap_bytes ? heap_bytes : default_heap_bytes();
        size = (size + 4095) & ~size_t{4095};
        std::string path =
            file.empty() ? pmem::default_pmem_dir() + "/undolog.heap" : file;
        bool created = s.region.map(path, size, kBaseAddr);

        // The log area scales with the region (1/8th, >= 1 MiB) so small
        // test heaps work and huge transactions (Fig. 6 resizes) still fit.
        size_t log_bytes = size / 8 < (1u << 20) ? (1u << 20) : size / 8;
        s.log_capacity = log_bytes / sizeof(LogEntry);
        s.header = reinterpret_cast<UHeader*>(s.region.base());
        s.log = reinterpret_cast<LogEntry*>(s.region.base() + kHeaderReserved);
        s.heap = s.region.base() + kHeaderReserved + log_bytes;
        s.heap_size = size - kHeaderReserved - log_bytes;
        if (size < kHeaderReserved + log_bytes + (1u << 20))
            throw std::runtime_error("UndoLogPTM: heap too small");
        s.meta = reinterpret_cast<HeapMeta*>(s.heap);

        if (!created && s.header->magic.load() == kMagic &&
            s.header->heap_size == s.heap_size) {
            recover();
        } else {
            format();
        }
        s.alloc.attach(&s.meta->alloc_meta, pool_base(), pool_size());
        s.stripes.resize(update_config().stripes);
        ROMULUS_RACE_REGISTER_REGION(s.heap, s.heap_size, "UndoLog", "heap",
                                     nullptr);
        s.initialized = true;
    }

    static void close() {
        ROMULUS_RACE_UNREGISTER_REGION(s.heap);
        s.region.unmap();
        s.initialized = false;
    }
    static void destroy() {
        ROMULUS_RACE_UNREGISTER_REGION(s.heap);
        s.region.destroy();
        s.initialized = false;
    }
    static bool initialized() { return s.initialized; }

    // -------------------------------------------------------- interposition

    template <typename T>
    static void pstore(T* addr, const T& val) {
        if (tl.fp_active) {
            fp_store(addr, &val, sizeof(T));
            return;
        }
        if (in_heap(addr) && tl.tx_depth > 0) {
            log_range(addr, sizeof(T));  // entry persisted + fence
            *addr = val;
            ROMULUS_RACE_WRITE(addr, sizeof(T));
            pmem::on_store(addr, sizeof(T));
            pmem::pwb_range(addr, sizeof(T));
            return;
        }
        *addr = val;
        ROMULUS_RACE_WRITE(addr, sizeof(T));
        if (s.initialized && s.region.contains(addr)) {
            pmem::on_store(addr, sizeof(T));
            pmem::pwb_range(addr, sizeof(T));
        }
    }

    template <typename T>
    static T pload(const T* addr) {
        if (tl.fp_active) {
            // Speculation: the write set buffers stores, so loads must
            // consult it; unbuffered lines are stripe-validated.
            T v;
            fp_load(&v, addr, sizeof(T));
            return v;
        }
        T v = *addr;  // undo log mutates in place: no load redirection
        if (tl.opt_active) {
            // Seqlock fast path: per-load validation, exactly as in the
            // Romulus engines (DESIGN.md §4.9) — a torn value is rejected
            // before the closure can use it.
            if (!s.seq.validate(tl.opt_seq)) throw sync::OptimisticAbort{};
            if (!ROMULUS_RACE_OPTIMISTIC_READ(&s.seq, addr, sizeof(T),
                                              tl.opt_seq, s.seq.word(),
                                              "seqlock.validate"))
                throw sync::OptimisticAbort{};
            return v;
        }
        ROMULUS_RACE_READ(addr, sizeof(T));
        return v;
    }

    static void store_range(void* dst, const void* src, size_t n) {
        if (tl.fp_active) {
            fp_store(dst, src, n);
            return;
        }
        if (in_heap(dst) && tl.tx_depth > 0) log_range(dst, n);
        std::memcpy(dst, src, n);
        ROMULUS_RACE_WRITE(dst, n);
        if (s.initialized && s.region.contains(dst)) {
            pmem::on_store(dst, n);
            pmem::pwb_range(dst, n);
        }
    }

    static void zero_range(void* dst, size_t n) {
        if (tl.fp_active) {
            static constexpr uint8_t kZeros[pmem::kCacheLineSize] = {};
            uint8_t* p = static_cast<uint8_t*>(dst);
            while (n > 0) {
                const size_t take = std::min(n, sizeof(kZeros));
                fp_store(p, kZeros, take);
                p += take;
                n -= take;
            }
            return;
        }
        if (in_heap(dst) && tl.tx_depth > 0) log_range(dst, n);
        std::memset(dst, 0, n);
        ROMULUS_RACE_WRITE(dst, n);
        if (s.initialized && s.region.contains(dst)) {
            pmem::on_store(dst, n);
            pmem::pwb_range(dst, n);
        }
    }

    static void note_used(const void* end) {
        // The fast path never allocates from the heap (alloc_bytes dooms
        // and serves scratch first): leave the header untouched.
        if (tl.fp_active) {
            fp_doom();
            return;
        }
        uint64_t off = static_cast<const uint8_t*>(end) - s.heap;
        if (off > s.header->used_size.load(std::memory_order_relaxed)) {
            s.header->used_size.store(off, std::memory_order_relaxed);
            pmem::on_store(&s.header->used_size, 8);
            pmem::pwb(&s.header->used_size);
        }
    }

    // --------------------------------------------------------- transactions

    template <typename F>
    static void updateTx(F&& f) {
        if (tl.tx_depth > 0) {
            f();
            return;
        }
        // Stripe-locked speculative fast path (DESIGN.md §4.11): commit
        // small disjoint updates without the exclusive mutex hold.  Any
        // abort (conflict, footprint overflow, allocation) falls through to
        // the pessimistic slow path below and re-runs the closure.
        if (update_config().fastpath) {
            if (try_fastpath_update(f)) return;
            pmem::tl_commit_stats().fastpath_fallbacks++;
        }
        std::unique_lock lk(s.mutex);
        ROMULUS_RACE_ACQUIRE(&s.mutex, "undo.write_lock");
        ROMULUS_RACE_SCOPED_RELEASE(&s.mutex, "undo.write_unlock");
        begin_tx();
        try {
            f();
        } catch (...) {
            // Failure atomicity also covers user exceptions: the undo log
            // restores the pre-transaction state, exactly as crash recovery
            // would.
            rollback();
            tl.tx_depth = 0;
            throw;
        }
        commit_tx();
    }

    template <typename F>
    static void readTx(F&& f) {
        if (tl.tx_depth > 0 || tl.opt_active) {  // flat nesting
            f();
            return;
        }
        // Seqlock fast path (DESIGN.md §4.9): the writer bumps s.seq around
        // its logging window, so a validated speculative reader never takes
        // the shared mutex at all.
        if (read_config().optimistic && try_optimistic_read(f)) return;
        std::shared_lock lk(s.mutex);
        ROMULUS_RACE_ACQUIRE(&s.mutex, "undo.read_lock");
        ROMULUS_RACE_SCOPED_RELEASE(&s.mutex, "undo.read_unlock");
        // Fast-path committers hold the mutex only shared, so pessimistic
        // readers additionally exclude their durable apply via fp_gate.
        FpGateGuard gate;
        ROMULUS_RACE_SCOPED_TX("read-tx");
        f();
    }

    /// Single-threaded API parity with the Romulus engines.
    static void begin_transaction() {
        if (tl.tx_depth++ > 0) return;
        begin_tx_body();
    }
    static void end_transaction() {
        assert(tl.tx_depth > 0);
        if (tl.tx_depth > 1) {
            --tl.tx_depth;
            return;
        }
        commit_body();
        tl.tx_depth = 0;
    }
    /// Roll back using the undo log (what recovery would do).
    static void abort_transaction() {
        assert(tl.tx_depth > 0);
        rollback();
        tl.tx_depth = 0;
    }
    static bool in_transaction() { return tl.tx_depth > 0; }

    // ----------------------------------------------------------- allocation

    template <typename T, typename... Args>
    static T* tmNew(Args&&... args) {
        void* ptr = alloc_bytes(sizeof(T));
        if constexpr (sizeof...(Args) == 0) {
            // Value-initializing placement-new would zero the object with
            // raw stores that bypass pstore — and thus the undo log, making
            // the chunk's previous content unrestorable after a crash mid-tx
            // (found by romfuzz: a rolled-back allocation left zeroes inside
            // a freed-and-reused value buffer).  Zero through zero_range
            // (logged) and default-initialize instead.
            zero_range(ptr, sizeof(T));
            return new (ptr) T;
        } else {
            return new (ptr) T(std::forward<Args>(args)...);
        }
    }
    template <typename T>
    static void tmDelete(T* obj) {
        if (obj == nullptr) return;
        obj->~T();
        free_bytes(obj);
    }
    static void* alloc_bytes(size_t n) {
        // Allocator metadata is not striped: doom the speculation (never
        // throw — this can sit beneath a noexcept frame) and serve volatile
        // scratch memory so the closure can finish; the slow-path re-run
        // performs the real allocation.
        if (tl.fp_active) {
            fp_doom();
            return tl_fp().scratch_alloc(n);
        }
        assert(tl.tx_depth > 0);
        void* ptr = s.alloc.alloc(n);
        if (ptr == nullptr) throw std::bad_alloc();
        return ptr;
    }
    static void free_bytes(void* ptr) {
        // tmDelete is routinely reached from noexcept destructors: doom and
        // drop the free, the slow-path re-run performs the real one.
        if (tl.fp_active) {
            fp_doom();
            return;
        }
        assert(tl.tx_depth > 0);
        if (ptr != nullptr) s.alloc.free(ptr);
    }

    // ---------------------------------------------------------------- roots

    template <typename T>
    static T* get_object(int idx) {
        return static_cast<T*>(s.meta->roots[idx].pload());
    }
    static void put_object(int idx, void* ptr) {
        assert(tl.tx_depth > 0);
        s.meta->roots[idx] = ptr;
    }

    // -------------------------------------------------------- introspection

    static uint64_t used_bytes() { return s.header->used_size.load(); }
    static Alloc& allocator() { return s.alloc; }
    static pmem::PmemRegion& region() { return s.region; }
    static uint64_t log_entries_in_tx() { return tl.entries_this_tx; }

    // Layout introspection, parallel to the Romulus engines (the persistency
    // checker builds its Layout from these): the undo log mutates one heap in
    // place, so "main" is the heap area and there is no twin copy.
    static uint8_t* main_base() { return s.heap; }
    static size_t main_size() { return s.heap_size; }
    static uint8_t* back_base() { return nullptr; }
    // Persistent undo-log area (romver attributes persist events to
    // header/log/heap areas through these).
    static uint8_t* log_base() { return reinterpret_cast<uint8_t*>(s.log); }
    static size_t log_size() { return s.log_capacity * sizeof(LogEntry); }

    /// Test hook: the optimistic-read sequence word (DESIGN.md §4.9),
    /// exposed so fixtures can simulate a writer window without a thread.
    static sync::SeqLock& seq_for_tests() { return s.seq; }

    /// Test hook: the speculative fast path's stripe table (DESIGN.md §4.11).
    static sync::StripeLockTable& stripes_for_tests() { return s.stripes; }

    /// Test hook: clear transaction thread-locals after a simulated crash.
    static void crash_reset_for_tests() {
        tl = TlState{};
        s.seq.set_for_tests(0);  // a crash mid-tx left the window odd
        s.stripes.reset_for_tests();  // stripe words are volatile
        new (&s.fp_gate) sync::CRWWPLock();
    }

    /// Crash recovery: an interrupted transaction left entries in the log;
    /// apply them in reverse to restore the pre-transaction state.
    static void recover() {
        uint64_t n = s.header->log_count.load();
        if (n == 0) return;
        if (n > s.log_capacity) throw std::runtime_error("UndoLogPTM: bad log");
        for (uint64_t i = n; i-- > 0;) {
            const LogEntry& e = s.log[i];
            auto* dst = reinterpret_cast<uint64_t*>(s.heap + e.heap_off);
            *dst = e.old_val;
            pmem::on_store(dst, 8);
            pmem::pwb(dst);
        }
        pmem::pfence();
        truncate_log();
        pmem::psync();
    }

  private:
    static constexpr uintptr_t kBaseAddr = 0x540000000000ull;
    static constexpr size_t kHeaderReserved = 4096;
    static constexpr uint64_t kMagic = 0x554E444F4C4F4731ull;  // "UNDOLOG1"

    struct LogEntry {
        uint64_t heap_off;  ///< 8-byte-aligned offset of the word in the heap
        uint64_t old_val;   ///< previous content
    };

    struct alignas(64) UHeader {
        std::atomic<uint64_t> magic;
        std::atomic<uint64_t> log_count;
        std::atomic<uint64_t> used_size;
        uint64_t heap_size;
    };

    struct HeapMeta {
        p<void*> roots[kMaxRootObjects];
        typename Alloc::Meta alloc_meta;
    };

    struct State {
        pmem::PmemRegion region;
        UHeader* header = nullptr;
        LogEntry* log = nullptr;
        uint64_t log_capacity = 0;
        uint8_t* heap = nullptr;
        size_t heap_size = 0;
        HeapMeta* meta = nullptr;
        Alloc alloc;
        std::shared_timed_mutex mutex;
        sync::SeqLock seq;  // optimistic-read window (DESIGN.md §4.9)
        // Speculative update fast path (DESIGN.md §4.11): per-line versioned
        // try-locks plus the gate that serializes fast-path durable applies
        // against each other and against pessimistic readers.
        sync::StripeLockTable stripes;
        sync::CRWWPLock fp_gate;
        bool initialized = false;
    };
    static State s;

    struct TlState {
        int tx_depth = 0;
        uint64_t entries_this_tx = 0;
        bool opt_active = false;  ///< inside a seqlock-validated read attempt
        uint64_t opt_seq = 0;     ///< the attempt's sequence snapshot
        bool fp_active = false;   ///< inside a speculative update (§4.11)
    };
    static thread_local TlState tl;

    /// RAII fp_gate shared hold for pessimistic readers (only taken when the
    /// fast path can actually commit concurrently with a shared mutex hold).
    struct FpGateGuard {
        const bool on = update_config().fastpath;
        const int t = sync::tid();
        FpGateGuard() {
            if (on) s.fp_gate.read_lock(t);
        }
        ~FpGateGuard() {
            if (on) s.fp_gate.read_unlock(t);
        }
    };

    /// Mirror of RomulusEngine::try_optimistic_read over the single global
    /// heap: bounded validated attempts at running `f` with no lock traffic
    /// and no fences; false sends the caller to the shared mutex.
    template <typename F>
    static bool try_optimistic_read(F& f) {
        ReadStats& rs = tl_read_stats();
        unsigned spins = 0;
        for (unsigned left = read_config().max_attempts; left > 0; --left) {
            const uint64_t sq = s.seq.read_begin();
            if (sq & 1) {  // a writer is inside its window right now
                rs.opt_aborts++;
                sync::spin_wait(spins);
                continue;
            }
            tl.opt_active = true;
            tl.opt_seq = sq;
            ROMULUS_RACE_TX_BEGIN("read-tx(opt)");
            bool valid;
            try {
                f();
                valid = s.seq.validate(sq);  // covers raw byte reads in f
            } catch (const sync::OptimisticAbort&) {
                valid = false;
            } catch (...) {
                tl.opt_active = false;
                ROMULUS_RACE_TX_END();
                if (s.seq.validate(sq)) {
                    rs.opt_exception_exits++;
                    throw;  // genuine user exception off a valid snapshot
                }
                rs.opt_aborts++;
                sync::spin_wait(spins);
                continue;
            }
            tl.opt_active = false;
            ROMULUS_RACE_TX_END();
            if (valid) {
                rs.opt_commits++;
                return true;
            }
            rs.opt_aborts++;
            sync::spin_wait(spins);
        }
        rs.fallbacks++;
        return false;
    }

    // --- speculative update fast path (DESIGN.md §4.11) --------------------
    //
    // Same protocol as RomulusEngine::try_fastpath_update over the single
    // global heap: speculate under a *shared* mutex hold (excludes slow-path
    // writers, who mutate the heap unstriped under the exclusive hold),
    // buffer the write set in a sync::SpecBuffer with stripe-validated
    // loads, then commit durably under per-line stripe try-locks.  The
    // durable apply undo-logs each coalesced run before storing it in place
    // and truncates the log at the end — so a torn fast-path commit recovers
    // through the unchanged backward log replay.

    static sync::SpecBuffer& tl_fp() {
        static thread_local sync::SpecBuffer fp;
        return fp;
    }

    static void fp_doom() { sync::spec_doom(tl_fp()); }

    static void fp_store(void* addr, const void* src, size_t n) {
        if (in_heap(addr)) {
            sync::spec_store(tl_fp(), s.stripes, s.heap,
                             static_cast<uint8_t*>(addr) - s.heap, src, n);
            return;
        }
        // Header/log writes are not stripe-guarded: doom the speculation
        // and drop the store (the slow-path re-run performs the real one).
        // Volatile test objects outside the region get the plain store.
        if (s.initialized && s.region.contains(addr)) {
            fp_doom();
            return;
        }
        std::memcpy(addr, src, n);
        ROMULUS_RACE_WRITE(addr, n);
    }

    static void fp_load(void* dst, const void* src, size_t n) {
        if (in_heap(src)) {
            sync::spec_load(tl_fp(), s.stripes, s.heap,
                            static_cast<const uint8_t*>(src) - s.heap, dst,
                            n);
            return;
        }
        std::memcpy(dst, src, n);
    }

    template <typename F>
    static bool try_fastpath_update(F& f) {
        std::shared_lock lk(s.mutex, std::try_to_lock);
        if (!lk.owns_lock()) return false;  // slow-path writer active
        ROMULUS_RACE_ACQUIRE(&s.mutex, "undo.read_lock");
        ROMULUS_RACE_SCOPED_RELEASE(&s.mutex, "undo.read_unlock");
        sync::SpecBuffer& fp = tl_fp();
        const UpdateConfig& cfg = update_config();
        fp.begin(cfg.max_fastpath_lines, cfg.max_read_stripes,
                 s.stripes.clock_now());
        tl.tx_depth = 1;  // nested updateTx/put_object contracts hold
        tl.fp_active = true;
        ROMULUS_RACE_TX_BEGIN("update-tx(fp)");
        bool ok;
        try {
            f();
            ok = !fp.aborted;
        } catch (...) {
            // Genuine user exception (speculation aborts never throw):
            // nothing was applied, so only surface it off an undoomed,
            // still-valid read set — otherwise retry on the slow path
            // instead of raising a phantom.
            const bool consistent =
                !fp.aborted &&
                sync::spec_reads_valid(fp, s.stripes, nullptr, 0);
            tl.fp_active = false;
            tl.tx_depth = 0;
            ROMULUS_RACE_TX_END();
            pmem::tl_commit_stats().fastpath_aborts++;
            if (consistent) {
                // The surfaced exception IS an aborted transaction from the
                // caller's (and the persistency checker's) point of view:
                // nothing was applied, but the lifecycle must stay visible.
                tx_begin_hook();
                tx_abort_hook();
                throw;
            }
            return false;
        }
        tl.fp_active = false;  // apply uses explicit primitives, not pstore
        if (ok) ok = fastpath_commit();
        tl.tx_depth = 0;
        ROMULUS_RACE_TX_END();
        auto& cs = pmem::tl_commit_stats();
        if (ok) {
            cs.fastpath_commits++;
        } else {
            cs.fastpath_aborts++;
        }
        return ok;
    }

    static bool fastpath_commit() {
        sync::SpecBuffer& fp = tl_fp();
        if (fp.nw == 0) return true;  // validated read-only closure
        unsigned order[sync::SpecBuffer::kLineCap];
        sync::StripeLockTable::Word pre[sync::SpecBuffer::kLineCap];
        unsigned ns = 0;
        if (!sync::spec_lock_write_set(fp, s.stripes, order, pre, &ns))
            return false;
        const uint64_t wv = s.stripes.clock_advance();
        fp_apply();
        for (unsigned j = 0; j < ns; ++j) s.stripes.release(order[j], wv);
        return true;
    }

    /// Durable apply of the validated write set.  fp_gate.write serializes
    /// concurrent fast-path committers and excludes pessimistic readers, so
    /// the seqlock window and the undo log keep their single-writer contract
    /// (slow-path writers are already excluded by the shared mutex hold).
    static void fp_apply() {
        sync::SpecBuffer& fp = tl_fp();
        s.fp_gate.write_lock();
        tl.entries_this_tx = 0;
        tx_begin_hook();
        s.seq.write_enter();
        ROMULUS_RACE_ACQUIRE(&s.seq, "seqlock.write_enter");
        // The write set arrives sorted by offset (spec_lock_write_set):
        // coalesce adjacent lines into maximal runs so each run pays one
        // log_range fence pair instead of one per store like the slow path.
        for (unsigned i = 0; i < fp.nw;) {
            const uint64_t off = fp.wlines[i].line_off;
            uint64_t len = sync::SpecBuffer::kLineSize;
            unsigned j = i + 1;
            while (j < fp.nw && fp.wlines[j].line_off == off + len) {
                len += sync::SpecBuffer::kLineSize;
                ++j;
            }
            uint8_t* dst = s.heap + off;
            log_range(dst, len);  // undo entries persisted + fenced
            for (unsigned k = i; k < j; ++k)
                std::memcpy(s.heap + fp.wlines[k].line_off, fp.wlines[k].data,
                            sync::SpecBuffer::kLineSize);
            ROMULUS_RACE_WRITE(dst, len);
            pmem::on_store(dst, len);
            pmem::pwb_range(dst, len);
            i = j;
        }
        pmem::pfence();  // all in-place pwbs complete before truncation
        truncate_log();
        pmem::psync();  // durability point: all of the write set or none
        ROMULUS_RACE_RELEASE(&s.seq, "seqlock.write_exit");
        s.seq.write_exit();
        tx_commit_hook();
        s.fp_gate.write_unlock();
    }

    static bool in_heap(const void* ptr) {
        auto u = reinterpret_cast<uintptr_t>(ptr);
        auto b = reinterpret_cast<uintptr_t>(s.heap);
        return u >= b && u < b + s.heap_size;
    }

    static uint8_t* pool_base() {
        size_t meta_end = (sizeof(HeapMeta) + 63) & ~size_t{63};
        return s.heap + meta_end;
    }
    static size_t pool_size() { return s.heap_size - (pool_base() - s.heap); }

    /// Append undo entries for the 8-byte words covering [addr, addr+len),
    /// persist them, fence, and only then may the caller store in place.
    /// This is the per-store fence that dominates undo-log cost (Table 1).
    static void log_range(void* addr, size_t len) {
        auto a = reinterpret_cast<uintptr_t>(addr) & ~uintptr_t{7};
        auto end = reinterpret_cast<uintptr_t>(addr) + len;
        uint64_t c = s.header->log_count.load(std::memory_order_relaxed);
        const uint64_t first = c;
        for (; a < end; a += 8) {
            if (c >= s.log_capacity)
                throw std::runtime_error("UndoLogPTM: log overflow");
            LogEntry& e = s.log[c];
            e.heap_off = a - reinterpret_cast<uintptr_t>(s.heap);
            e.old_val = *reinterpret_cast<const uint64_t*>(a);
            pmem::on_store(&e, sizeof(LogEntry));
            ++c;
        }
        pmem::pwb_range(&s.log[first], (c - first) * sizeof(LogEntry));
        pmem::pfence();  // entries durable before the count covers them —
                         // otherwise a crash could replay torn entries
        s.header->log_count.store(c, std::memory_order_relaxed);
        pmem::on_store(&s.header->log_count, 8);
        pmem::pwb(&s.header->log_count);
        pmem::pfence();  // entry + count durable before the in-place store
        tl.entries_this_tx += c - first;
        pmem::notify_range_logged(addr, len);
    }

    static void truncate_log() {
        s.header->log_count.store(0, std::memory_order_relaxed);
        pmem::on_store(&s.header->log_count, 8);
        pmem::pwb(&s.header->log_count);
    }

    static void begin_tx() {
        tl.tx_depth = 1;
        begin_tx_body();
    }
    static void begin_tx_body() {
        tl.entries_this_tx = 0;
        tx_begin_hook();
        // Open the optimistic-read window before the first in-place store
        // can become visible (the undo log mutates the live heap mid-tx, so
        // the whole transaction body is the readers' exclusion window).
        s.seq.write_enter();
        ROMULUS_RACE_ACQUIRE(&s.seq, "seqlock.write_enter");
        ROMULUS_RACE_TX_BEGIN("update-tx");
    }

    static void commit_tx() {
        commit_body();
        tl.tx_depth = 0;
    }
    static void commit_body() {
        pmem::pfence();  // all in-place pwbs complete before truncation
        truncate_log();
        pmem::psync();
        // Close the window only after the commit psync: a validated
        // speculative reader has read durable, committed state.
        ROMULUS_RACE_RELEASE(&s.seq, "seqlock.write_exit");
        s.seq.write_exit();
        tx_commit_hook();
        ROMULUS_RACE_TX_END();
    }

    static void rollback() {
        uint64_t n = s.header->log_count.load();
        for (uint64_t i = n; i-- > 0;) {
            const LogEntry& e = s.log[i];
            auto* dst = reinterpret_cast<uint64_t*>(s.heap + e.heap_off);
            *dst = e.old_val;
            pmem::on_store(dst, 8);
            pmem::pwb(dst);
        }
        pmem::pfence();
        truncate_log();
        pmem::psync();
        // The rollback stores above mutate the heap: the window stays odd
        // until the pre-transaction state is fully restored.
        ROMULUS_RACE_RELEASE(&s.seq, "seqlock.write_exit");
        s.seq.write_exit();
        tx_abort_hook();
        ROMULUS_RACE_TX_END();
    }

    static void format() {
        s.header->magic.store(0);
        pmem::pwb(&s.header->magic);
        pmem::pfence();

        s.header->log_count.store(0);
        s.header->heap_size = s.heap_size;
        size_t meta_end = (sizeof(HeapMeta) + 63) & ~size_t{63};
        s.header->used_size.store(meta_end);
        pmem::on_store(s.header, sizeof(UHeader));
        pmem::pwb_range(s.header, sizeof(UHeader));

        tl.tx_depth = 0;  // format stores go through the non-logged path
        new (s.meta) HeapMeta;
        for (int i = 0; i < kMaxRootObjects; ++i) s.meta->roots[i] = nullptr;
        s.alloc.format(&s.meta->alloc_meta, pool_base(), pool_size());
        pmem::pwb_range(s.heap, meta_end);
        pmem::pfence();

        s.header->magic.store(kMagic);
        pmem::on_store(&s.header->magic, 8);
        pmem::pwb(&s.header->magic);
        pmem::psync();
    }
};

}  // namespace romulus::baselines
