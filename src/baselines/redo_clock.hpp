// Global version clock shared by RedoLogPTM transactions (TL2/TinySTM-style).
#pragma once

#include <atomic>
#include <cstdint>

namespace romulus::baselines {

extern std::atomic<uint64_t> g_redo_clock;

}  // namespace romulus::baselines
