// Per-shard sequence lock for optimistic durable read-only transactions
// (DESIGN.md §4.9).
//
// The C-RW-WP engines serialize readers behind the shard writer: a read
// transaction arrives on the read indicator and waits while a writer is
// present, so read-mostly workloads are bounded by writer occupancy on the
// shard.  This word gives readers a speculative escape hatch in the spirit
// of Persistent HyTM's fine-grained fast path (arXiv 2501.14783) and the
// RTM speculate-then-fallback idiom (SNIPPETS.md snippet 3): the writer
// bumps the sequence to odd before its first in-place mutation of main and
// back to even once main's new content is *durable* (after the CPY psync),
// and a reader that observes the same even value around its loads has read
// a consistent, committed-and-durable snapshot — with zero lock traffic,
// zero read-indicator arrival and zero persistence fences.
//
// Validation discipline (what makes the optimistic path crash-free): the
// engines validate after EVERY interposed pload, between the load and any
// use of the loaded value.  A pointer obtained from a validated load is
// therefore a pointer that existed in the consistent snapshot — the classic
// seqlock torn-pointer-dereference hazard cannot arise, because the load of
// a torn value fails validation before anything dereferences it.  Raw
// (non-interposed) byte copies inside a read closure are covered by the
// final validation at closure exit: they can observe torn bytes mid-run,
// but the transaction then retries/falls back instead of returning them.
//
// Memory ordering:
//   * write_enter stores the odd value and then issues a seq_cst fence so
//     the odd word is globally visible before any subsequent (plain) store
//     to main — the store-store edge a seqlock writer needs.
//   * write_exit publishes the even value with release, ordering every
//     mutation of main before it.
//   * read_begin is an acquire load (synchronizes with write_exit, so a
//     validated reader inherits the previous writer's stores).
//   * validate issues an acquire fence before re-loading the word, so the
//     data loads it guards cannot sink below the re-check.
// None of these are *persistence* fences: the word is volatile state and
// readers never touch pwb/pfence/psync (the SimPersistence fence counter
// stays flat across an optimistic read — ISSUE 8 acceptance).
#pragma once

#include <atomic>
#include <cstdint>

namespace romulus::sync {

/// Internal control-flow exception: an optimistic read attempt observed a
/// sequence change (a writer entered the shard's MUT window).  Thrown by the
/// engines' pload validation, caught by readTx, never escapes to the user.
struct OptimisticAbort {};

class alignas(64) SeqLock {
  public:
    /// Reader: snapshot the sequence.  Odd = a writer is inside its window.
    uint64_t read_begin() const { return seq_.load(std::memory_order_acquire); }

    /// Reader: true when the snapshot `sq` is still valid, i.e. no writer
    /// entered since read_begin returned it.  Call after data loads; the
    /// acquire fence keeps them from sinking below the re-check.
    bool validate(uint64_t sq) const {
        std::atomic_thread_fence(std::memory_order_acquire);
        return seq_.load(std::memory_order_relaxed) == sq;
    }

    /// Writer: open the window (even -> odd).  Caller must hold the shard's
    /// writer lock; the trailing fence orders the odd store before the
    /// writer's subsequent in-place stores.
    void write_enter() {
        seq_.store(seq_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
    }

    /// Writer: close the window (odd -> even), releasing every mutation made
    /// inside it to validating readers.
    void write_exit() {
        seq_.store(seq_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
    }

    uint64_t value() const { return seq_.load(std::memory_order_relaxed); }

    /// The raw word, for the race detector's optimistic-read re-validation
    /// (ROMULUS_RACE_OPTIMISTIC_READ needs the atomic itself).
    const std::atomic<uint64_t>* word() const { return &seq_; }

    /// Tests only: plant an arbitrary sequence value (e.g. near the 64-bit
    /// wrap) — equality-based validation must survive the wrap.
    void set_for_tests(uint64_t v) {
        seq_.store(v, std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> seq_{0};
    char pad_[64 - sizeof(std::atomic<uint64_t>)];
};

static_assert(sizeof(SeqLock) == 64, "one cache line, no false sharing");

}  // namespace romulus::sync
