// Stripe-granular versioned try-locks for the speculative update fast path
// (DESIGN.md §4.11).
//
// One table per shard guards that shard's main region at cache-line
// granularity: line offset -> stripe via a multiplicative hash, each stripe a
// word-sized TL2-style versioned lock (version << 1 | locked).  The layout
// follows the RTM-batching idiom of SNIPPETS.md snippet 3 (cyfdecyf/
// mem-order): a flat array of word-sized version locks indexed by an address
// hash, acquired with try-semantics only — a speculative transaction that
// cannot take a stripe immediately aborts to the universal C-RW-WP slow
// path, so no acquisition order can deadlock and the fallback inherits the
// engine's existing starvation freedom.
//
// All of this state is volatile: stripe words and the per-shard fast-path
// clock restart at zero after a crash (recovery holds no speculative state),
// exactly like the C-RW-WP lock and the seqlock they compose with.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "analysis/race_hooks.hpp"

namespace romulus::sync {

/// Per-shard array of versioned try-locks plus the shard's fast-path commit
/// clock.  Single allocation, cache-line-aligned slots so two hot stripes
/// never share a line with each other or with the clock.
class StripeLockTable {
  public:
    using Word = uint64_t;
    static constexpr Word kLockedBit = 1;

    static constexpr unsigned kDefaultStripes = 1024;
    static constexpr unsigned kMaxStripes = 1u << 20;

    StripeLockTable() : StripeLockTable(kDefaultStripes) {}
    explicit StripeLockTable(unsigned stripes) { resize(stripes); }

    /// (Re)build the table with the given stripe count (rounded up to a
    /// power of two, clamped to [1, kMaxStripes]).  NOT thread-safe: call
    /// only from quiescent engine init / crash_reset paths.
    void resize(unsigned stripes) {
        unsigned n = 1;
        while (n < stripes && n < kMaxStripes) n <<= 1;
        mask_ = n - 1;
        slots_ = std::make_unique<Slot[]>(n);
        clock_.store(0, std::memory_order_relaxed);
    }

    /// Zero every stripe word and the clock, keeping the allocation.  Used
    /// by crash_reset_for_tests: a crash loses all volatile lock state.
    void reset_for_tests() {
        for (unsigned s = 0; s <= mask_; ++s)
            slots_[s].w.store(0, std::memory_order_relaxed);
        clock_.store(0, std::memory_order_relaxed);
    }

    unsigned stripe_count() const { return mask_ + 1; }

    /// Map a cache-line index (byte offset / 64) to its stripe.
    unsigned stripe_of_line(size_t line_index) const {
        // Fibonacci hashing spreads the low bits of sequential line indexes
        // across the table; the shift keeps only as many bits as we need.
        const uint64_t h =
            static_cast<uint64_t>(line_index) * 0x9E3779B97F4A7C15ull;
        return static_cast<unsigned>(h >> 40) & mask_;
    }

    static bool is_locked(Word w) { return (w & kLockedBit) != 0; }
    static Word version_of(Word w) { return w >> 1; }

    /// Current word of a stripe (acquire: a version read before an
    /// optimistic load validates that load if re-read unchanged after).
    Word read(unsigned s) const {
        return slots_[s].w.load(std::memory_order_acquire);
    }

    /// The raw atomic, for the race detector's optimistic-read
    /// re-validation (ROMULUS_RACE_OPTIMISTIC_READ needs the word itself)
    /// and as the stripe's sync-object identity in acquire/release events.
    const std::atomic<Word>* word(unsigned s) const { return &slots_[s].w; }

    /// Try-acquire: CAS the locked bit in.  On success `observed` holds the
    /// pre-acquire word (its version is what release() must exceed); on
    /// failure the stripe was locked or the CAS lost and the caller must
    /// abort its speculation.  Never blocks.
    bool try_acquire(unsigned s, Word& observed) {
        Word w = slots_[s].w.load(std::memory_order_relaxed);
        if (is_locked(w)) {
            observed = w;
            return false;
        }
        if (!slots_[s].w.compare_exchange_strong(w, w | kLockedBit,
                                                 std::memory_order_acquire,
                                                 std::memory_order_relaxed)) {
            observed = w;
            return false;
        }
        observed = w;
        // Inherit the previous holder's writes: pairs with the RELEASE in
        // release()/release_aborted().
        ROMULUS_RACE_ACQUIRE(&slots_[s], "stripe.acquire");
        return true;
    }

    /// Release after a committed speculation, publishing `new_version`
    /// (callers pass the post-commit fast-path clock value, which is
    /// strictly greater than any version observed while the stripe was
    /// free).  Eliding this release is the seeded bug of the
    /// StripeElidedRelease fixture (tests/test_race_fixtures.cpp).
    void release(unsigned s, Word new_version) {
        ROMULUS_RACE_RELEASE(&slots_[s], "stripe.release");
        slots_[s].w.store(new_version << 1, std::memory_order_release);
    }

    /// Release after an aborted speculation: restore the pre-acquire word so
    /// concurrent readers' recorded versions stay valid (nothing was
    /// published).
    void release_aborted(unsigned s, Word pre_acquire) {
        ROMULUS_RACE_RELEASE(&slots_[s], "stripe.release");
        slots_[s].w.store(pre_acquire, std::memory_order_release);
    }

    /// The shard's fast-path commit clock (TL2 "write version" clock).
    uint64_t clock_now() const {
        return clock_.load(std::memory_order_acquire);
    }
    uint64_t clock_advance() {
        return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }

  private:
    struct alignas(64) Slot {
        std::atomic<Word> w{0};
    };
    std::unique_ptr<Slot[]> slots_;
    unsigned mask_ = 0;
    alignas(64) std::atomic<uint64_t> clock_{0};
};

/// Thread-local speculation state shared by the engines' update fast paths:
/// a redo-style write set of whole captured cache lines plus a read set of
/// stripe observations.  The engine interposes pstore/pload into
/// spec_store/spec_load while a speculation is open, then commits the
/// buffer with its own durable protocol after spec_lock_write_set.
///
/// Aborts never throw.  A speculation that hits a conflict, footprint
/// overflow or allocation is *doomed* (`aborted` set) but the user closure
/// keeps executing to completion in a sandboxed pass-through mode; the
/// engine checks `aborted` when the closure returns and re-runs it on the
/// slow path.  Throwing would be fatal: data-structure destructors are
/// implicitly noexcept and routinely call tmDelete from inside an update
/// transaction, so an exception raised beneath them would std::terminate.
/// Doomed-mode rules keep the continuation safe: loads are word-atomic (no
/// torn pointers), stores stay buffered (read-your-writes) or are dropped
/// once the hard cap is exhausted, allocations are served from a volatile
/// scratch arena, and frees are ignored — every effect is discarded with
/// the speculation.
struct SpecBuffer {
    static constexpr unsigned kLineCap = 64;   ///< hard footprint bound
    static constexpr unsigned kReadCap = 256;  ///< hard read-set bound
    static constexpr size_t kLineSize = 64;
    struct WLine {
        uint64_t line_off;  ///< line-aligned byte offset into the heap area
        unsigned stripe;
        uint64_t version;  ///< stripe version when the line was captured
        alignas(8) uint8_t data[kLineSize];
    };
    struct Observed {
        unsigned stripe;
        uint64_t word;
    };
    WLine wlines[kLineCap];
    Observed rset[kReadCap];
    unsigned nw = 0, nr = 0;
    unsigned wcap = 0, rcap = 0;
    uint64_t rv = 0;       ///< fast-path clock snapshot at speculation start
    bool aborted = false;  ///< doomed: running to completion, will not commit

    /// Doomed-mode allocation arena: tmNew inside a speculation that can no
    /// longer commit must still return usable memory (the closure keeps
    /// executing, possibly beneath noexcept frames), so requests are served
    /// from volatile scratch blocks and discarded with the speculation.
    std::vector<std::unique_ptr<uint8_t[]>> scratch;

    void* scratch_alloc(size_t n) {
        scratch.emplace_back(new uint8_t[n + kLineSize - 1]);
        const auto p = reinterpret_cast<uintptr_t>(scratch.back().get());
        return reinterpret_cast<void*>((p + kLineSize - 1) &
                                       ~uintptr_t{kLineSize - 1});
    }

    void begin(unsigned max_lines, unsigned max_reads, uint64_t read_version) {
        nw = nr = 0;
        wcap = max_lines < kLineCap ? max_lines : kLineCap;
        rcap = max_reads < kReadCap ? max_reads : kReadCap;
        rv = read_version;
        aborted = false;
        scratch.clear();
    }
    WLine* find(uint64_t line_off) {
        for (unsigned i = 0; i < nw; ++i)
            if (wlines[i].line_off == line_off) return &wlines[i];
        return nullptr;
    }
    /// Dedup by stripe: a recorded version <= rv can only change via a
    /// commit that publishes a version > rv, which the caller's per-load
    /// validation rejects — so a re-observed stripe always matches.
    bool record_read(unsigned stripe, uint64_t word) {
        for (unsigned i = 0; i < nr; ++i)
            if (rset[i].stripe == stripe) return true;
        if (nr >= rcap) return false;
        rset[nr] = Observed{stripe, word};
        ++nr;
        return true;
    }
};

/// Doom the speculation: it keeps executing but will not commit.  Never
/// throws (see the SpecBuffer doc for why throwing would be fatal).
inline void spec_doom(SpecBuffer& b) { b.aborted = true; }

/// Copy [src, src+n) with single-instruction loads for every aligned 8-byte
/// word.  A doomed speculation keeps reading live heap memory without
/// validation, so individual words — pointers above all — must never tear
/// even though the snapshot as a whole is no longer consistent.
inline void word_atomic_copy(void* dst, const void* src, size_t n) {
    uint8_t* d = static_cast<uint8_t*>(dst);
    const uint8_t* s = static_cast<const uint8_t*>(src);
    while (n > 0 && (reinterpret_cast<uintptr_t>(s) & 7) != 0) {
        *d++ = *s++;
        --n;
    }
    while (n >= 8) {
        const uint64_t w = *reinterpret_cast<const volatile uint64_t*>(s);
        std::memcpy(d, &w, 8);
        d += 8;
        s += 8;
        n -= 8;
    }
    while (n > 0) {
        *d++ = *s++;
        --n;
    }
}

/// Capture a heap line into the write set: a validated snapshot of its
/// current content (the unwritten bytes of the line must be current at
/// apply time — the acquire-time version check re-verifies this).  On a
/// conflict or footprint overflow the speculation is doomed and the line is
/// captured best-effort anyway (word-atomic, unversioned) so buffered
/// read-your-writes keeps holding; past the hard cap nullptr is returned
/// and the caller drops the store.
inline SpecBuffer::WLine* spec_capture_line(SpecBuffer& fp,
                                            StripeLockTable& stripes,
                                            uint8_t* base, uint64_t line_off) {
    if (!fp.aborted) {
        if (fp.nw >= fp.wcap) {
            spec_doom(fp);  // footprint overflow: fall back to the slow path
        } else {
            const unsigned st =
                stripes.stripe_of_line(line_off / SpecBuffer::kLineSize);
            const StripeLockTable::Word w0 = stripes.read(st);
            SpecBuffer::WLine& wl = fp.wlines[fp.nw];
            if (StripeLockTable::is_locked(w0) ||
                StripeLockTable::version_of(w0) > fp.rv) {
                spec_doom(fp);
            } else {
                std::memcpy(wl.data, base + line_off, SpecBuffer::kLineSize);
                if (stripes.read(st) == w0 &&  // torn-capture re-check
                    ROMULUS_RACE_OPTIMISTIC_READ(
                        stripes.word(st), base + line_off,
                        SpecBuffer::kLineSize, w0, stripes.word(st),
                        "stripe.validate")) {
                    wl.line_off = line_off;
                    wl.stripe = st;
                    wl.version = StripeLockTable::version_of(w0);
                    ++fp.nw;
                    return &wl;
                }
                spec_doom(fp);
            }
        }
    }
    if (fp.nw >= SpecBuffer::kLineCap) return nullptr;
    SpecBuffer::WLine& wl = fp.wlines[fp.nw];
    word_atomic_copy(wl.data, base + line_off, SpecBuffer::kLineSize);
    wl.line_off = line_off;
    wl.stripe = 0;
    wl.version = 0;  // never consulted: a doomed buffer is not committed
    ++fp.nw;
    return &wl;
}

/// Buffered store to [base+off, base+off+n): every touched line is captured
/// once, then overwritten in the buffer only — the heap is untouched until
/// the engine's durable apply.
inline void spec_store(SpecBuffer& fp, StripeLockTable& stripes, uint8_t* base,
                       uint64_t off, const void* src, size_t n) {
    const uint8_t* from = static_cast<const uint8_t*>(src);
    while (n > 0) {
        const uint64_t line = off & ~uint64_t{SpecBuffer::kLineSize - 1};
        const size_t take =
            std::min<size_t>(n, line + SpecBuffer::kLineSize - off);
        SpecBuffer::WLine* wl = fp.find(line);
        if (wl == nullptr) wl = spec_capture_line(fp, stripes, base, line);
        if (wl != nullptr) std::memcpy(wl->data + (off - line), from, take);
        off += take;
        from += take;
        n -= take;
    }
}

/// Validated load from [base+off, base+off+n): buffered lines read from the
/// write set; everything else is read from the heap and checked against its
/// stripe word (the post-load re-read rejects values torn by a concurrent
/// applier; a version > rv rejects values newer than the speculation's
/// start-time snapshot).  A failed validation or read-set overflow dooms
/// the speculation and degrades this — and every later — unbuffered load
/// to a word-atomic raw read.
inline void spec_load(SpecBuffer& fp, StripeLockTable& stripes,
                      const uint8_t* base, uint64_t off, void* dst, size_t n) {
    uint8_t* out = static_cast<uint8_t*>(dst);
    while (n > 0) {
        const uint64_t line = off & ~uint64_t{SpecBuffer::kLineSize - 1};
        const size_t take =
            std::min<size_t>(n, line + SpecBuffer::kLineSize - off);
        if (const SpecBuffer::WLine* wl = fp.find(line)) {
            std::memcpy(out, wl->data + (off - line), take);
        } else {
            bool validated = false;
            if (!fp.aborted) {
                const unsigned st =
                    stripes.stripe_of_line(line / SpecBuffer::kLineSize);
                const StripeLockTable::Word w0 = stripes.read(st);
                if (!StripeLockTable::is_locked(w0) &&
                    StripeLockTable::version_of(w0) <= fp.rv) {
                    std::memcpy(out, base + off, take);
                    if (stripes.read(st) == w0 &&
                        ROMULUS_RACE_OPTIMISTIC_READ(
                            stripes.word(st), base + off, take, w0,
                            stripes.word(st), "stripe.validate") &&
                        fp.record_read(st, w0))
                        validated = true;
                }
                if (!validated) spec_doom(fp);
            }
            if (!validated) word_atomic_copy(out, base + off, take);
        }
        out += take;
        off += take;
        n -= take;
    }
}

/// Read-set validation: every observed stripe must hold its recorded word,
/// or that word's locked image while we hold the stripe ourselves (a read
/// line we also wrote).
inline bool spec_reads_valid(const SpecBuffer& fp,
                             const StripeLockTable& stripes,
                             const unsigned* held, unsigned nheld) {
    for (unsigned i = 0; i < fp.nr; ++i) {
        const SpecBuffer::Observed& o = fp.rset[i];
        const StripeLockTable::Word cur = stripes.read(o.stripe);
        if (cur == o.word) continue;
        if (cur == (o.word | StripeLockTable::kLockedBit)) {
            bool mine = false;
            for (unsigned j = 0; j < nheld; ++j) mine |= (held[j] == o.stripe);
            if (mine) continue;
        }
        return false;
    }
    return true;
}

/// Commit-time acquisition: try-lock the write set's stripes in canonical
/// (sorted, deduplicated) order, then validate the captured line versions
/// and the read set.  On success order[]/pre[] hold the ns acquired stripes
/// and their pre-acquire words; on any conflict everything acquired is
/// released untouched and false is returned (caller falls back).  Also
/// sorts the write set by line offset so the engine's apply coalesces
/// adjacent lines into maximal runs.
inline bool spec_lock_write_set(SpecBuffer& fp, StripeLockTable& stripes,
                                unsigned* order, StripeLockTable::Word* pre,
                                unsigned* ns_out) {
    unsigned ns = 0;
    for (unsigned i = 0; i < fp.nw; ++i) {
        const unsigned st = fp.wlines[i].stripe;
        bool seen = false;
        for (unsigned j = 0; j < ns; ++j) seen |= (order[j] == st);
        if (!seen) order[ns++] = st;
    }
    std::sort(order, order + ns);
    bool ok = true;
    unsigned got = 0;
    for (; got < ns; ++got) {
        if (!stripes.try_acquire(order[got], pre[got])) {
            ok = false;
            break;
        }
    }
    if (ok) {
        // Captured-line versions: the buffered before-image of each line's
        // unwritten bytes must still be current.
        for (unsigned i = 0; i < fp.nw && ok; ++i) {
            const SpecBuffer::WLine& wl = fp.wlines[i];
            for (unsigned j = 0; j < ns; ++j) {
                if (order[j] == wl.stripe &&
                    StripeLockTable::version_of(pre[j]) != wl.version)
                    ok = false;
            }
        }
    }
    if (ok) ok = spec_reads_valid(fp, stripes, order, ns);
    if (!ok) {
        for (unsigned j = 0; j < got; ++j)
            stripes.release_aborted(order[j], pre[j]);
        return false;
    }
    std::sort(fp.wlines, fp.wlines + fp.nw,
              [](const SpecBuffer::WLine& a, const SpecBuffer::WLine& b) {
                  return a.line_off < b.line_off;
              });
    *ns_out = ns;
    return true;
}

}  // namespace romulus::sync
