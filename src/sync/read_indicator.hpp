// Per-thread padded read indicator (§5.2).
//
// "We implement the C-RW-WP lock's 'read indicator' as an array where each
// entry is statically assigned to a thread and extends over two cache lines,
// so as to avoid false sharing."  Readers touch only their own slot, so
// arrive/depart never contend with other readers; the writer scans all slots
// when draining.
#pragma once

#include <atomic>
#include <cstdint>

#include "analysis/race_hooks.hpp"
#include "sync/thread_registry.hpp"

namespace romulus::sync {

class ReadIndicator {
  public:
    void arrive(int t) {
        // seq_cst: the arrival must be globally ordered before the reader's
        // subsequent check of the writer flag (store-load fence — the single
        // fence the paper says readers need).
        slots_[t].count.fetch_add(1, std::memory_order_seq_cst);
    }

    void depart(int t) {
        // Release before the decrement: by the time a draining writer can
        // observe this slot empty, the reader's clock is in the indicator.
        ROMULUS_RACE_RELEASE(this, "ri.depart");
        slots_[t].count.fetch_sub(1, std::memory_order_release);
    }

    /// Index of the first busy slot at or after `from`, or -1 when every
    /// slot in [from, max_tids()) is empty.  Writers drain with a resumable
    /// scan: once the writer's presence is published, a slot observed empty
    /// can only be re-entered by a reader that will see the writer and step
    /// aside, so the drain never needs to rescan [0, from) — each spin
    /// iteration costs O(remaining readers) instead of O(max_tids).
    int first_busy(int from = 0) const {
        const int n = max_tids();
        for (int i = from; i < n; ++i) {
            if (slots_[i].count.load(std::memory_order_acquire) != 0)
                return i;
        }
        return -1;
    }

    bool is_empty() const { return first_busy(0) < 0; }

  private:
    struct alignas(128) Slot {  // two cache lines per entry
        std::atomic<uint64_t> count{0};
    };
    Slot slots_[kMaxThreads];
};

}  // namespace romulus::sync
