// Flat-combining announce array (Hendler et al. [14], used as in §5.2/§5.3).
//
// An update transaction announces a pointer to its closure in its per-thread
// slot.  Whichever announcer acquires the writer lock becomes the combiner:
// it scans the array, executes every announced closure inside a single
// durable transaction, and clears each slot once the corresponding operation
// is durable.  Announcers whose slot was cleared return without ever taking
// the lock — this is what gives update transactions starvation-free progress
// even though the underlying lock is an unfair spin lock.
#pragma once

#include <atomic>
#include <functional>

#include "analysis/race_hooks.hpp"
#include "sync/spinlock.hpp"
#include "sync/thread_registry.hpp"

namespace romulus::sync {

class FlatCombiningArray {
  public:
    using Op = std::function<void()>;

    /// Publish `op` in this thread's slot.  `op` must stay alive until the
    /// slot is observed empty again.
    void announce(int t, Op* op) {
        // Release before the slot store: the combiner that takes this op
        // inherits everything the announcer did while preparing it.
        ROMULUS_RACE_RELEASE(&slots_[t], "fc.announce");
        slots_[t].op.store(op, std::memory_order_release);
    }

    /// Has this thread's announced operation been executed (slot cleared)?
    bool is_done(int t) const {
        if (slots_[t].op.load(std::memory_order_acquire) == nullptr) {
            // Acquire after observing the cleared slot: the announcer
            // inherits the combiner's mark_done release (and thus the
            // durable effects of its own operation).
            ROMULUS_RACE_ACQUIRE(&slots_[t], "fc.is_done");
            return true;
        }
        return false;
    }

    /// Combiner side: run `fn(op)` for every announced operation.  `fn` must
    /// call mark_done() itself once the operation's effects are durable.
    template <typename Fn>
    void for_each_announced(Fn&& fn) {
        const int n = max_tids();
        for (int i = 0; i < n; ++i) {
            Op* op = slots_[i].op.load(std::memory_order_acquire);
            if (op != nullptr) {
                ROMULUS_RACE_ACQUIRE(&slots_[i], "fc.take");
                fn(i, op);
            }
        }
    }

    /// Clear slot i, releasing its announcer.
    void mark_done(int i) {
        ROMULUS_RACE_RELEASE(&slots_[i], "fc.mark_done");
        slots_[i].op.store(nullptr, std::memory_order_release);
    }

  private:
    struct alignas(128) Slot {
        std::atomic<Op*> op{nullptr};
    };
    Slot slots_[kMaxThreads];
};

}  // namespace romulus::sync
