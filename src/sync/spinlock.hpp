// Test-and-test-and-set spin lock with polite backoff.
//
// §5.2: "In our C-RW-WP implementation we replace the cohort lock by a
// simpler spin-lock".  The lock yields while spinning so single-core and
// oversubscribed runs make progress (the flat-combining layer on top of it
// is what provides starvation freedom, not the lock itself).
#pragma once

#include <atomic>
#include <thread>

#include "analysis/race_hooks.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <emmintrin.h>
#endif

namespace romulus::sync {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    _mm_pause();
#endif
}

/// One spin iteration that stays friendly when HW threads are scarce.  The
/// counter saturates at the yield threshold instead of growing without
/// bound: a long wait (billions of iterations) must keep yielding, not wrap
/// around to the pause phase.
inline void spin_wait(unsigned& spins) {
    if (spins < 64) {
        ++spins;
        cpu_relax();
    } else {
        std::this_thread::yield();
    }
}

class SpinLock {
  public:
    bool try_lock() {
        if (!locked_.load(std::memory_order_relaxed) &&
            !locked_.exchange(true, std::memory_order_acquire)) {
            ROMULUS_RACE_ACQUIRE(this, "spinlock.lock");
            return true;
        }
        return false;
    }

    void lock() {
        unsigned spins = 0;
        while (!try_lock()) {
            while (locked_.load(std::memory_order_relaxed)) spin_wait(spins);
        }
    }

    void unlock() {
        ROMULUS_RACE_RELEASE(this, "spinlock.unlock");
        locked_.store(false, std::memory_order_release);
    }

    bool is_locked() const { return locked_.load(std::memory_order_acquire); }

  private:
    std::atomic<bool> locked_{false};
};

}  // namespace romulus::sync
