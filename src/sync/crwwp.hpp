// C-RW-WP: a writer-preference reader-writer lock (Calciu et al. [3]),
// specialised as in §5.2 of the paper: the cohort lock is replaced by a
// simple spin lock and the read indicator is a padded per-thread array.
//
// Writer preference: an arriving reader that observes a writer (present or
// waiting) departs and waits, so writers are not starved by a continuous
// stream of readers.  Shared-lock acquisition needs no persistence fence —
// all of these variables live in volatile memory (§5.2).
#pragma once

#include <atomic>

#include "analysis/race_hooks.hpp"
#include "sync/read_indicator.hpp"
#include "sync/spinlock.hpp"

namespace romulus::sync {

class CRWWPLock {
  public:
    void read_lock(int t) {
        unsigned spins = 0;
        while (true) {
            ri_.arrive(t);
            if (!writer_present_.load(std::memory_order_seq_cst)) {
                // Acquire after the flag check: observing "no writer" means
                // the previous writer's write_unlock release is recorded.
                ROMULUS_RACE_ACQUIRE(this, "crwwp.read_lock");
                return;
            }
            // A writer holds or wants the lock: step aside (writer pref).
            ri_.depart(t);
            while (writer_present_.load(std::memory_order_relaxed))
                spin_wait(spins);
        }
    }

    /// Single-shot shared acquisition: arrive, and if a writer is present
    /// (or waiting) depart and fail instead of spinning.  The speculative
    /// update fast path uses this to exclude slow-path writers for the
    /// duration of a stripe-locked commit without ever waiting behind one —
    /// failure just means "take the slow path yourself".
    bool try_read_lock(int t) {
        ri_.arrive(t);
        if (!writer_present_.load(std::memory_order_seq_cst)) {
            ROMULUS_RACE_ACQUIRE(this, "crwwp.read_lock");
            return true;
        }
        ri_.depart(t);
        return false;
    }

    void read_unlock(int t) { ri_.depart(t); }

    void write_lock() {
        writers_mutex_.lock();
        writer_present_.store(true, std::memory_order_seq_cst);
        wait_readers();
    }

    /// Try to become the writer without blocking on the writers' mutex.
    /// On success the caller holds the exclusive lock (readers drained).
    bool try_write_lock() {
        if (!writers_mutex_.try_lock()) return false;
        writer_present_.store(true, std::memory_order_seq_cst);
        wait_readers();
        return true;
    }

    void write_unlock() {
        // Release before the flag store: a reader that observes "no writer"
        // inherits everything this writer did.
        ROMULUS_RACE_RELEASE(this, "crwwp.write_unlock");
        writer_present_.store(false, std::memory_order_release);
        writers_mutex_.unlock();
    }

    bool writer_present() const {
        return writer_present_.load(std::memory_order_acquire);
    }

  private:
    void wait_readers() {
        // Resumable drain: writer_present_ is already published, so a slot
        // seen empty stays effectively empty (later arrivals depart again
        // without reading) — spin only on the first still-busy slot onward.
        unsigned spins = 0;
        for (int i = 0; (i = ri_.first_busy(i)) >= 0;) spin_wait(spins);
        // The writer barrier: every departed reader released into ri_, so
        // this acquire inherits all of their reads before the writer
        // mutates.  Eliding this drain is the seeded bug of the
        // CRWWPElidedBarrier fixture (tests/test_race_fixtures.cpp).
        ROMULUS_RACE_ACQUIRE(&ri_, "crwwp.drain");
    }

    SpinLock writers_mutex_;
    std::atomic<bool> writer_present_{false};
    ReadIndicator ri_;
};

}  // namespace romulus::sync
