// Dense thread-id registry.
//
// The C-RW-WP read indicator, the flat-combining array and the Left-Right
// read indicators all need a small per-thread slot index that is stable for
// the thread's lifetime (§5.2: "each entry is statically assigned to a
// thread").  Slots are recycled when threads exit so long-running test
// suites that spawn many short-lived threads do not exhaust the table.
#pragma once

namespace romulus::sync {

inline constexpr int kMaxThreads = 128;

/// This thread's slot index in [0, kMaxThreads).  Assigned on first call,
/// released automatically at thread exit.  Throws std::runtime_error if more
/// than kMaxThreads threads are alive simultaneously.
int tid();

/// Upper bound (exclusive) on slot indices handed out so far; scanning
/// [0, max_tids()) covers every live thread's slot.
int max_tids();

}  // namespace romulus::sync
