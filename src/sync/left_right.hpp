// Left-Right concurrency control (Ramalhete & Correia [24]), the driver used
// by RomulusLR (§5.3).
//
// Readers are wait-free population-oblivious: arrive on the current version's
// read indicator, read whichever region the control variable points at,
// depart.  The single writer is responsible for never mutating a region that
// readers may still be traversing: it flips the read-region control variable
// and then performs the version-toggle-and-drain handshake before touching
// the region readers just vacated.
//
// In RomulusLR the two "instances" are the byte-identical main and back
// regions; the control variable is toggled *twice* per update transaction so
// that writers always start on main (§5.3).
#pragma once

#include <atomic>

#include "analysis/race_hooks.hpp"
#include "sync/read_indicator.hpp"
#include "sync/spinlock.hpp"

namespace romulus::sync {

class LeftRight {
  public:
    static constexpr int kReadMain = 0;
    static constexpr int kReadBack = 1;

    /// Reader protocol: vi = arrive(); r = read_region(); ... ; depart(vi).
    int arrive(int t) {
        int vi = version_index_.load(std::memory_order_seq_cst);
        ri_[vi].arrive(t);
        return vi;
    }

    void depart(int t, int vi) { ri_[vi].depart(t); }

    int read_region() const {
        const int r = read_region_.load(std::memory_order_seq_cst);
        // Acquire after the load, not in arrive(): a reader's happens-before
        // edge comes from observing the writer's read_region publication.
        // (A reader that loads the *old* value reads the region the writer
        // has not started mutating yet — no edge needed, no race.)
        ROMULUS_RACE_ACQUIRE(this, "lr.read_region");
        return r;
    }

    /// Writer side: direct new readers at region `r` (kReadMain/kReadBack).
    void set_read_region(int r) {
        // Release before the publication store: readers that observe `r`
        // inherit everything the writer wrote before switching them over.
        ROMULUS_RACE_RELEASE(this, "lr.publish");
        read_region_.store(r, std::memory_order_seq_cst);
    }

    /// Writer side: wait until every reader that might be using the *other*
    /// read region has departed.  Standard Left-Right toggle: first drain the
    /// version we are about to switch new readers onto, switch, then drain
    /// the old version.
    void toggle_version_and_wait() {
        const int prev = version_index_.load(std::memory_order_seq_cst);
        const int next = 1 - prev;
        // Both drains resume from the first busy slot (see
        // ReadIndicator::first_busy): a stale arrival on an already-scanned
        // slot reads through read_region_, which the writer has already
        // published, so it never needs to be waited for.
        unsigned spins = 0;
        for (int i = 0; (i = ri_[next].first_busy(i)) >= 0;) spin_wait(spins);
        ROMULUS_RACE_ACQUIRE(&ri_[next], "lr.drain");
        version_index_.store(next, std::memory_order_seq_cst);
        spins = 0;
        for (int i = 0; (i = ri_[prev].first_busy(i)) >= 0;) spin_wait(spins);
        // Draining both indicators inherits every departed reader's clock,
        // so the writer's subsequent mutations cannot race with them.
        // Skipping the toggle (the LeftRightNoToggle fixture's seeded bug)
        // loses exactly these two edges.
        ROMULUS_RACE_ACQUIRE(&ri_[prev], "lr.drain");
    }

  private:
    std::atomic<int> version_index_{0};
    std::atomic<int> read_region_{kReadBack};
    ReadIndicator ri_[2];
};

}  // namespace romulus::sync
