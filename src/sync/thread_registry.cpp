#include "sync/thread_registry.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>

#include "analysis/race_hooks.hpp"

namespace romulus::sync {

namespace {

std::mutex g_mu;
bool g_used[kMaxThreads] = {};
std::atomic<int> g_max_tids{0};

// Address-only sentinel for the detector's registry sync object: a thread
// that recycles slot i inherits the clock the previous holder released here.
// The explicit-tid hook variants are required — the implicit ones would call
// tid() and recurse into the thread_local SlotHolder mid-construction.
[[maybe_unused]] const int g_registry_sentinel = 0;

int acquire_slot() {
    std::lock_guard lk(g_mu);
    for (int i = 0; i < kMaxThreads; ++i) {
        if (!g_used[i]) {
            g_used[i] = true;
            int hi = g_max_tids.load(std::memory_order_relaxed);
            if (i + 1 > hi) g_max_tids.store(i + 1, std::memory_order_relaxed);
            ROMULUS_RACE_THREAD_ACQUIRE(&g_registry_sentinel, "registry.slot",
                                        i);
            return i;
        }
    }
    throw std::runtime_error("thread_registry: more than kMaxThreads threads");
}

void release_slot(int i) {
    std::lock_guard lk(g_mu);
    ROMULUS_RACE_THREAD_RELEASE(&g_registry_sentinel, "registry.slot", i);
    g_used[i] = false;
}

struct SlotHolder {
    int slot;
    SlotHolder() : slot(acquire_slot()) {}
    ~SlotHolder() { release_slot(slot); }
};

}  // namespace

int tid() {
    static thread_local SlotHolder holder;
    return holder.slot;
}

int max_tids() { return g_max_tids.load(std::memory_order_acquire); }

}  // namespace romulus::sync
